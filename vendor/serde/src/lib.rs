//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of serde's API the workspace actually uses:
//! the `Serialize` / `Deserialize` traits (with derive macros from the
//! sibling `serde_derive` shim), `Serializer` / `Deserializer`, and the
//! `ser::Error` / `de::Error` extension traits.
//!
//! Instead of serde's visitor-based zero-copy data model, everything
//! funnels through one self-describing tree, [`Content`]. A `Serializer`
//! consumes a `Content`; a `Deserializer` produces one. The only backend
//! in the workspace is JSON (the vendored `serde_json`), for which this
//! model is exactly sufficient, and it keeps derived code tiny.

pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros (same names as the traits; they live in the macro
// namespace, so the glob-free double export mirrors real serde).
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree all (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// Null / unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, sets).
    Seq(Vec<Content>),
    /// Map / struct. Keys are full `Content` so non-string keys (e.g.
    /// hex-serializing digests) survive until the format layer decides.
    Map(Vec<(Content, Content)>),
}

/// The one concrete error type used by the content-tree backends.
#[derive(Clone, Debug)]
pub struct ContentError(pub String);

impl std::fmt::Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}
