//! Serialization half of the shim.

use crate::Content;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Errors produced while serializing.
pub trait Error: Sized + std::fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A type that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization backend.
///
/// Unlike real serde there is a single required method: the backend
/// consumes one [`Content`] tree. The primitive `serialize_*` helpers are
/// provided so hand-written `Serialize` impls read exactly like their
/// serde counterparts.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(if v <= i64::MAX as u64 {
            Content::I64(v as i64)
        } else {
            Content::U64(v)
        })
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }

    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }

    /// Serializes `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        let c = to_content(value).map_err(Error::custom)?;
        self.serialize_content(c)
    }
}

/// The canonical backend: serializing *to* a [`Content`] tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = crate::ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, crate::ContentError> {
        Ok(content)
    }
}

/// Serializes any value into a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, crate::ContentError> {
    value.serialize(ContentSerializer)
}

// ----- impls for std types -------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self as u64)
    }
}

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        u64::try_from(*self)
            .map_err(|_| Error::custom("u128 exceeds u64 range"))
            .and_then(|v| s.serialize_u64(v))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

fn seq_content<'a, T: Serialize + 'a, E: Error>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Content, E> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_content(item).map_err(E::custom)?);
    }
    Ok(Content::Seq(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<T, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<T, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<T, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<T, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<T, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

fn map_content<'a, K: Serialize + 'a, V: Serialize + 'a, E: Error>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<Content, E> {
    let mut out = Vec::new();
    for (k, v) in entries {
        out.push((
            to_content(k).map_err(E::custom)?,
            to_content(v).map_err(E::custom)?,
        ));
    }
    Ok(Content::Map(out))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = map_content::<K, V, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = map_content::<K, V, S::Error>(self.iter())?;
        s.serialize_content(c)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_content(&self.$n).map_err(S::Error::custom)?),+];
                s.serialize_content(Content::Seq(items))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
