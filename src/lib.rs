//! # MedLedger
//!
//! A from-scratch Rust reproduction of **"Blockchain-based Bidirectional
//! Updates on Fine-grained Medical Data"** (Li, Cao, Hu, Yoshikawa;
//! ICDE 2019 workshops, arXiv:1904.10606).
//!
//! Full medical records are split into fine-grained **views** shared
//! pairwise between stakeholders; **bidirectional transformations**
//! (asymmetric lenses) keep every view consistent with its source after
//! updates on either side; a **permissioned blockchain** holds only the
//! sharing *metadata* (per-attribute write permissions, update history,
//! sync barriers) in a smart contract.
//!
//! ## The typed session facade
//!
//! The public API has three layers, re-exported at the crate root:
//!
//! 1. [`MedLedger`] — built with a fluent builder; peers are typed
//!    [`PeerId`] handles, never raw strings.
//! 2. [`PeerSession`] — `ledger.session(peer)` scopes reads, sharing
//!    agreements ([`ShareBuilder`]), audits and permission grants to one
//!    stakeholder.
//! 3. [`UpdateBatch`] — `session.begin(table)` stages writes;
//!    [`UpdateBatch::commit`] runs the paper's whole Fig. 5 pipeline
//!    (request-update transaction → consensus → lens propagation → acks
//!    → Step-6 cascades) and returns a typed [`CommitOutcome`] with the
//!    on-chain receipts, the propagation report, and the numbered trace.
//!    Failures are typed [`CommitError`]s; permission denials carry the
//!    reverted receipt and the updater's local state is rolled back.
//!
//! ## Quickstart
//!
//! ```
//! use medledger::{MedLedger, Value};
//! use medledger::bx::LensSpec;
//! use medledger::workload::fig1_full_records;
//!
//! // A two-stakeholder ledger: Doctor shares a dosage slice with Patient.
//! let mut ledger = MedLedger::builder()
//!     .seed("doc-quickstart")
//!     .pbft(100)
//!     .peer_key_capacity(64)
//!     .build()
//!     .expect("ledger boots");
//! let doctor = ledger.add_peer("Doctor").expect("add doctor");
//! let patient = ledger.add_peer("Patient").expect("add patient");
//!
//! // Sources: the doctor holds the full records, the patient a slice.
//! let full = fig1_full_records();
//! let d3 = full
//!     .project(&["patient_id", "medication_name", "dosage"], &["patient_id"])
//!     .expect("project");
//! ledger.session(doctor).load_source("D3", d3.clone()).expect("load");
//! ledger.session(patient).load_source("P1", d3).expect("load");
//!
//! // A shared table with a Fig. 3 permission row: only the doctor may
//! // change the dosage.
//! let lens = LensSpec::project(&["patient_id", "dosage"], &["patient_id"]);
//! ledger
//!     .session(doctor)
//!     .share("ward")
//!     .bind("D3", lens.clone())
//!     .with(patient, "P1", lens)
//!     .writers("patient_id", &[doctor])
//!     .writers("dosage", &[doctor])
//!     .create()
//!     .expect("share registered on chain");
//!
//! // A transactional update batch: stage, then commit through the whole
//! // Fig. 5 pipeline (tx → consensus → lens propagation → acks).
//! let outcome = ledger
//!     .session(doctor)
//!     .begin("ward")
//!     .set(vec![Value::Int(188)], "dosage", Value::text("half a tablet"))
//!     .commit()
//!     .expect("commit");
//! assert_eq!(outcome.version(), 1);
//! assert!(outcome.receipts.iter().all(|r| r.status.is_success()));
//!
//! // The patient sees the new dosage; a patient-side write is denied.
//! let view = ledger.session(patient).read("ward").expect("read");
//! assert_eq!(view.get(&[Value::Int(188)]).expect("row")[1], Value::text("half a tablet"));
//! let denied = ledger
//!     .session(patient)
//!     .begin("ward")
//!     .set(vec![Value::Int(188)], "dosage", Value::text("double it"))
//!     .commit()
//!     .unwrap_err();
//! assert!(denied.is_permission_denied());
//!
//! // The paper's core promise holds: all peers are consistent.
//! ledger.check_consistency().expect("all shared tables consistent");
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`crypto`] | SHA-256, HMAC, Merkle trees, hash-based signatures, seeded PRG |
//! | [`relational`] | values, schemas, keyed tables, predicates, queries, databases |
//! | [`bx`] | lens combinators, GetPut/PutGet law checkers, deltas, overlap analysis |
//! | [`ledger`] | transactions, blocks, chain validation, mempool, audits |
//! | [`contracts`] | contract runtime, the Fig. 3 sharing contract, the MedVM |
//! | [`consensus`] | virtual-time PBFT simulation, PoW interval model |
//! | [`network`] | deterministic latency-modeled message simulation |
//! | [`storage`] | versioned binary codec, segmented WALs, snapshots, storage backends |
//! | [`workload`] | synthetic EHR generation, update streams, de-identification |
//! | [`core`] | the engine (`System`), the facade, the Fig. 1 scenario, baselines |
//! | [`engine`] | ticketed commit pipeline, group-commit queue, parallel fan-out |
//! | [`node`] | async runtime, per-peer event loops, wire protocol, gateway |
//!
//! ## The ticketed commit pipeline
//!
//! For concurrent writers, wrap the ledger in a [`LedgerService`]:
//! submissions stage writes like an [`UpdateBatch`] but end with a
//! non-blocking `submit()` returning a [`CommitTicket`]; `tick()` /
//! `drain()` commit each **wave** in one block and one scheduled PBFT
//! round. Same-table submissions are *composed* into one member (each
//! submitter permission-checked and receipted individually; a denied
//! submitter rolls back alone) instead of rejected, and Step-6 cascades
//! re-enter the next wave instead of running serially. Updates touching
//! **distinct** shared tables can also still be staged on an
//! [`engine::CommitQueue`] and committed together with blocking
//! `commit_all`. See the `medledger-engine` crate docs for runnable
//! examples of both.
//!
//! For a *deployment* — per-peer event loops, a framed wire protocol,
//! and a concurrent gateway serving thousands of client sessions over
//! that pipeline on a dependency-free async runtime — see the
//! [`node`] crate ([`node::Deployment`]).

pub use medledger_bx as bx;
pub use medledger_consensus as consensus;
pub use medledger_contracts as contracts;
pub use medledger_core as core;
pub use medledger_crypto as crypto;
pub use medledger_engine as engine;
pub use medledger_ledger as ledger;
pub use medledger_network as network;
pub use medledger_node as node;
pub use medledger_relational as relational;
pub use medledger_storage as storage;
pub use medledger_telemetry as telemetry;
pub use medledger_workload as workload;

pub use medledger_core::{
    CommitError, CommitOutcome, ConsensusKind, CoreError, MedLedger, MedLedgerBuilder, PeerId,
    PeerReader, PeerSession, PropagationMode, Recovery, ShareBuilder, StorageOptions, SystemConfig,
    UpdateBatch, UpdateReport, WorkflowTrace,
};
pub use medledger_engine::{CommitTicket, LedgerService, Submission, WaveReport};
pub use medledger_relational::{Row, ShardMap, Table, Value};
