//! # MedLedger
//!
//! A from-scratch Rust reproduction of **"Blockchain-based Bidirectional
//! Updates on Fine-grained Medical Data"** (Li, Cao, Hu, Yoshikawa;
//! ICDE 2019 workshops, arXiv:1904.10606).
//!
//! Full medical records are split into fine-grained **views** shared
//! pairwise between stakeholders; **bidirectional transformations**
//! (asymmetric lenses) keep every view consistent with its source after
//! updates on either side; a **permissioned blockchain** holds only the
//! sharing *metadata* (per-attribute write permissions, update history,
//! sync barriers) in a smart contract.
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`crypto`] | SHA-256, HMAC, Merkle trees, hash-based signatures, seeded PRG |
//! | [`relational`] | values, schemas, keyed tables, predicates, queries, databases |
//! | [`bx`] | lens combinators, GetPut/PutGet law checkers, deltas, overlap analysis |
//! | [`ledger`] | transactions, blocks, chain validation, mempool, audits |
//! | [`contracts`] | contract runtime, the Fig. 3 sharing contract, the MedVM |
//! | [`consensus`] | virtual-time PBFT simulation, PoW interval model |
//! | [`network`] | deterministic latency-modeled message simulation |
//! | [`workload`] | synthetic EHR generation, update streams, de-identification |
//! | [`core`] | peers, sharing agreements, the Fig. 4/5 workflows, baselines |
//!
//! ## Quickstart
//!
//! ```
//! use medledger::core::scenario;
//! use medledger::core::SystemConfig;
//!
//! // Build the paper's Fig. 1 world: Patient, Doctor, Researcher.
//! let mut scn = scenario::build(SystemConfig {
//!     seed: "doc-quickstart".into(),
//!     peer_key_capacity: 64,
//!     ..Default::default()
//! }).expect("scenario builds");
//!
//! // Run the paper's Fig. 5 update workflow.
//! let (researcher_report, doctor_report) =
//!     scenario::run_fig5(&mut scn).expect("workflow runs");
//! assert!(researcher_report.version >= 1);
//! assert_eq!(doctor_report.changed_attrs, vec!["dosage".to_string()]);
//!
//! // The paper's core promise holds: all peers are consistent.
//! scn.system.check_consistency().expect("all shared tables consistent");
//! ```

pub use medledger_bx as bx;
pub use medledger_consensus as consensus;
pub use medledger_contracts as contracts;
pub use medledger_core as core;
pub use medledger_crypto as crypto;
pub use medledger_ledger as ledger;
pub use medledger_network as network;
pub use medledger_relational as relational;
pub use medledger_workload as workload;
